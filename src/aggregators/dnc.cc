#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/gradient_stats.h"
#include "common/parallel.h"
#include "common/vecops.h"
#include "obs/trace.h"

namespace signguard::agg {

namespace {

// Top right-singular direction of the centered row matrix via power
// iteration on A^T A, where rows are the (subsampled, centered) gradients.
// Returns the projection of every row onto that direction. The random
// draws stay on the calling thread; the O(n b) passes fan out.
std::vector<double> top_direction_projections(
    const std::vector<std::vector<double>>& rows, std::size_t power_iters,
    Rng& rng) {
  if (rows.empty()) return {};
  const std::size_t n = rows.size();
  const std::size_t d = rows.front().size();
  std::vector<double> v(d);
  for (auto& x : v) x = rng.normal();
  double nv = std::sqrt(std::inner_product(v.begin(), v.end(), v.begin(), 0.0));
  for (auto& x : v) x /= std::max(nv, 1e-12);

  std::vector<double> proj(n), next(d);
  for (std::size_t it = 0; it < power_iters; ++it) {
    // next = A^T (A v): two passes keep it O(n d) per iteration. The
    // second pass is coordinate-parallel (column sums over rows in fixed
    // order), so the FP result is thread-count-invariant.
    common::parallel_for(n, [&](std::size_t i) {
      proj[i] =
          std::inner_product(rows[i].begin(), rows[i].end(), v.begin(), 0.0);
    });
    common::parallel_chunks(
        d, [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t j = begin; j < end; ++j) {
            double acc = 0.0;
            for (std::size_t i = 0; i < n; ++i) acc += proj[i] * rows[i][j];
            next[j] = acc;
          }
        });
    const double norm = std::sqrt(
        std::inner_product(next.begin(), next.end(), next.begin(), 0.0));
    if (norm < 1e-12) break;
    for (std::size_t j = 0; j < d; ++j) v[j] = next[j] / norm;
  }
  common::parallel_for(n, [&](std::size_t i) {
    proj[i] =
        std::inner_product(rows[i].begin(), rows[i].end(), v.begin(), 0.0);
  });
  return proj;
}

}  // namespace

std::vector<float> DnCAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext& ctx) {
  check_grads(grads);
  assert(ctx.rng != nullptr);
  const std::size_t n = grads.rows();
  obs::Span span("agg/dnc", std::int64_t(n));
  const std::size_t d = grads.cols();
  const std::size_t m = std::min(ctx.assumed_byzantine, (n - 1) / 2);

  std::vector<std::size_t> good(n);
  std::iota(good.begin(), good.end(), 0);

  // filter_frac * m rounds to zero for small budgets (m = 1 at any
  // filter_frac < 0.5), which used to pay every subsample + power-
  // iteration pass while removing nobody; any positive Byzantine budget
  // must drop at least one candidate per iteration.
  const std::size_t remove_per_iter =
      m == 0 ? 0
             : std::max<std::size_t>(1, static_cast<std::size_t>(std::round(
                                            cfg_.filter_frac * double(m))));

  for (std::size_t iter = 0; iter < cfg_.niters && m > 0; ++iter) {
    if (good.size() <= remove_per_iter + 1) break;
    // Coordinate subsampling, clamped to d so a zero-dimensional round
    // gathers nothing instead of indexing an empty coordinate sample.
    const std::size_t b = std::min(
        d, std::max<std::size_t>(
               1, static_cast<std::size_t>(cfg_.subsample_frac * double(d))));
    const auto coords = ctx.rng->sample_without_replacement(d, b);

    // Build the centered sub-matrix over the current good set; the
    // per-row gather is parallel, the column means accumulate in fixed
    // row order.
    std::vector<std::vector<double>> rows(good.size(),
                                          std::vector<double>(b, 0.0));
    common::parallel_for(good.size(), [&](std::size_t i) {
      const auto g = grads.row(good[i]);
      for (std::size_t j = 0; j < b; ++j) rows[i][j] = double(g[coords[j]]);
    });
    std::vector<double> mu(b, 0.0);
    for (const auto& r : rows)
      for (std::size_t j = 0; j < b; ++j) mu[j] += r[j];
    for (auto& v : mu) v /= double(rows.size());
    common::parallel_for(good.size(), [&](std::size_t i) {
      for (std::size_t j = 0; j < b; ++j) rows[i][j] -= mu[j];
    });

    const auto proj =
        top_direction_projections(rows, cfg_.power_iters, *ctx.rng);

    // Outlier score = squared projection; drop the highest scores.
    std::vector<std::size_t> order(good.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
      return proj[a] * proj[a] < proj[c] * proj[c];
    });
    const std::size_t keep = good.size() - remove_per_iter;
    std::vector<std::size_t> next_good;
    next_good.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) next_good.push_back(good[order[i]]);
    std::sort(next_good.begin(), next_good.end());
    good = std::move(next_good);
  }

  selected_ = good;
  obs::count(obs::Stage::kFilter, obs::Counter::kFilterAdmits,
             selected_.size());
  obs::count(obs::Stage::kFilter, obs::Counter::kFilterRejects,
             n - selected_.size());
  return vec::mean_of_subset(grads, selected_);
}

}  // namespace signguard::agg
