#pragma once
// The paper's comparison GARs (§VI): Mean, coordinate-wise trimmed mean,
// coordinate-wise median, geometric median, Multi-Krum, Bulyan and DnC.
// All operate on the flat GradientMatrix; coordinate-wise rules
// parallelize over coordinate ranges, distance-based rules over the
// pairwise block.

#include "aggregators/aggregator.h"

namespace signguard::agg {

// Plain arithmetic mean — the undefended FedAvg baseline.
class MeanAggregator : public Aggregator {
 public:
  using Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const GarContext& ctx) override;
  std::string name() const override { return "Mean"; }
};

// Coordinate-wise trimmed mean (Yin et al., ICML'18): drop the m largest
// and m smallest values per coordinate, average the rest.
class TrimmedMeanAggregator : public Aggregator {
 public:
  using Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const GarContext& ctx) override;
  std::string name() const override { return "TrMean"; }
};

// Coordinate-wise median (Yin et al., ICML'18).
class MedianAggregator : public Aggregator {
 public:
  using Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const GarContext& ctx) override;
  std::string name() const override { return "Median"; }
};

// Geometric median via Weiszfeld iterations (Chen et al., 2017).
class GeoMedAggregator : public Aggregator {
 public:
  explicit GeoMedAggregator(std::size_t max_iters = 50, double eps = 1e-8)
      : max_iters_(max_iters), eps_(eps) {}

  using Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const GarContext& ctx) override;
  std::string name() const override { return "GeoMed"; }

 private:
  std::size_t max_iters_;
  double eps_;
};

// Multi-Krum (Blanchard et al., NeurIPS'17): score each gradient by the
// sum of its n-m-2 smallest squared distances to the others; average the
// n-m-2 best-scored gradients.
class MultiKrumAggregator : public Aggregator {
 public:
  using Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const GarContext& ctx) override;
  std::string name() const override { return "Multi-Krum"; }
  std::vector<std::size_t> last_selected() const override {
    return selected_;
  }
  bool reports_selection() const override { return true; }

 private:
  std::vector<std::size_t> selected_;
};

// Bulyan (El Mhamdi et al., ICML'18): iterative Krum selection of
// theta = n - 2m gradients, then per-coordinate mean of the
// beta = theta - 2m values closest to the coordinate median.
class BulyanAggregator : public Aggregator {
 public:
  using Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const GarContext& ctx) override;
  std::string name() const override { return "Bulyan"; }
  std::vector<std::size_t> last_selected() const override {
    return selected_;
  }
  bool reports_selection() const override { return true; }

 private:
  std::vector<std::size_t> selected_;
};

// Divide-and-Conquer (Shejwalkar & Houmansadr, NDSS'21): project the
// (coordinate-subsampled, centered) gradients onto their top singular
// direction, drop the filter_frac * m highest outlier scores, repeat.
struct DnCConfig {
  std::size_t niters = 1;
  double filter_frac = 1.5;       // fraction of m removed per iteration
  double subsample_frac = 0.25;   // fraction of coordinates sampled
  std::size_t power_iters = 20;   // power-iteration steps for top-1 SVD
};

class DnCAggregator : public Aggregator {
 public:
  explicit DnCAggregator(DnCConfig cfg = {}) : cfg_(cfg) {}

  using Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const GarContext& ctx) override;
  std::string name() const override { return "DnC"; }
  std::vector<std::size_t> last_selected() const override {
    return selected_;
  }
  bool reports_selection() const override { return true; }

 private:
  DnCConfig cfg_;
  std::vector<std::size_t> selected_;
};

}  // namespace signguard::agg
