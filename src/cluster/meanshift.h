#pragma once
// Mean-Shift clustering (Comaniciu & Meer, 2002) with a flat kernel and
// automatic bandwidth estimation — the unsupervised model SignGuard's
// sign-based filter trains each round (paper §IV-B, Algorithm 2 step 2).
// The number of clusters is adaptive: every convergent mode within
// bandwidth/2 of another is merged.

#include <span>
#include <vector>

#include "cluster/cluster_result.h"
#include "common/gradient_matrix.h"

namespace signguard::cluster {

struct MeanShiftConfig {
  // <= 0 means "estimate from the data" (average k-NN distance with
  // k = quantile * n, sklearn-style).
  double bandwidth = 0.0;
  double bandwidth_quantile = 0.5;
  std::size_t max_iters = 100;
  double tol = 1e-5;  // per-point shift convergence threshold
};

// Estimate a bandwidth as the given quantile of the pairwise distance
// distribution; returns a small positive floor when points coincide.
// Matrix overloads are the primary implementations (mode seeking runs per
// point on the thread pool); the vector-of-vectors overloads adapt.
double estimate_bandwidth(const common::GradientMatrix& points,
                          double quantile);
double estimate_bandwidth(std::span<const std::vector<float>> points,
                          double quantile);

ClusterResult mean_shift(const common::GradientMatrix& points,
                         const MeanShiftConfig& cfg = {});
ClusterResult mean_shift(std::span<const std::vector<float>> points,
                         const MeanShiftConfig& cfg = {});

}  // namespace signguard::cluster
