#pragma once
// Shared result type for the clustering algorithms: a label per point plus
// per-cluster sizes. SignGuard's sign-based filter keeps the largest
// cluster as the trusted set (paper §IV-B).

#include <cstddef>
#include <vector>

namespace signguard::cluster {

struct ClusterResult {
  std::vector<int> labels;          // cluster id per point, in [0, n_clusters)
  std::size_t n_clusters = 0;
  std::vector<std::size_t> sizes;   // indexed by cluster id

  // Id of the most populated cluster (lowest id wins ties). Returns -1 on
  // an empty result (n_clusters == 0) instead of invoking UB.
  int largest_cluster() const;

  // Indices of the points belonging to `cluster_id`; empty for ids outside
  // [0, n_clusters), including the -1 sentinel.
  std::vector<std::size_t> members(int cluster_id) const;
};

}  // namespace signguard::cluster
