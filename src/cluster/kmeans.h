#pragma once
// K-Means with k-means++ seeding. Used by SignGuard when the caller knows
// two clusters suffice (all malicious clients sending one identical
// vector, paper §IV-B), and as a comparison clusterer in tests/ablations.

#include <span>
#include <vector>

#include "cluster/cluster_result.h"
#include "common/gradient_matrix.h"
#include "common/rng.h"

namespace signguard::cluster {

struct KMeansConfig {
  std::size_t k = 2;
  std::size_t max_iters = 50;
  double tol = 1e-6;  // squared-center-movement convergence threshold
};

// points: n rows of equal dimension. Returns labels over [0, k).
// If n < k, every point gets its own cluster. The matrix overload is the
// primary implementation (assignment parallelized over row spans); the
// vector-of-vectors overload adapts into it.
ClusterResult kmeans(const common::GradientMatrix& points,
                     const KMeansConfig& cfg, Rng& rng);
ClusterResult kmeans(std::span<const std::vector<float>> points,
                     const KMeansConfig& cfg, Rng& rng);

}  // namespace signguard::cluster
