#include "cluster/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/vecops.h"

namespace signguard::cluster {

int ClusterResult::largest_cluster() const {
  assert(n_clusters > 0);
  return int(std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

std::vector<std::size_t> ClusterResult::members(int cluster_id) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (labels[i] == cluster_id) out.push_back(i);
  return out;
}

ClusterResult kmeans(std::span<const std::vector<float>> points,
                     const KMeansConfig& cfg, Rng& rng) {
  const std::size_t n = points.size();
  ClusterResult result;
  if (n == 0) return result;
  const std::size_t k = std::min(cfg.k, n);
  const std::size_t d = points.front().size();

  // k-means++ seeding.
  std::vector<std::vector<float>> centers;
  centers.reserve(k);
  centers.push_back(points[std::size_t(rng.randint(0, int(n) - 1))]);
  std::vector<double> min_d2(n, 0.0);
  while (centers.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centers)
        best = std::min(best, vec::dist2(points[i], c));
      min_d2[i] = best;
      total += best;
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double r = rng.uniform(0.0, total);
      for (std::size_t i = 0; i < n; ++i) {
        r -= min_d2[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = std::size_t(rng.randint(0, int(n) - 1));
    }
    centers.push_back(points[chosen]);
  }

  std::vector<int> labels(n, 0);
  for (std::size_t iter = 0; iter < cfg.max_iters; ++iter) {
    // Assign.
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d2 = vec::dist2(points[i], centers[c]);
        if (d2 < best) {
          best = d2;
          best_c = int(c);
        }
      }
      labels[i] = best_c;
    }
    // Update.
    std::vector<std::vector<double>> sums(k, std::vector<double>(d, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[std::size_t(labels[i])];
      for (std::size_t j = 0; j < d; ++j)
        sums[std::size_t(labels[i])][j] += points[i][j];
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep empty-cluster center in place
      std::vector<float> nc(d);
      for (std::size_t j = 0; j < d; ++j)
        nc[j] = static_cast<float>(sums[c][j] / double(counts[c]));
      movement += vec::dist2(centers[c], nc);
      centers[c] = std::move(nc);
    }
    if (movement < cfg.tol) break;
  }

  result.labels = std::move(labels);
  result.n_clusters = k;
  result.sizes.assign(k, 0);
  for (const int l : result.labels) ++result.sizes[std::size_t(l)];
  return result;
}

}  // namespace signguard::cluster
