#include "cluster/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/parallel.h"
#include "common/vecops.h"

namespace signguard::cluster {

int ClusterResult::largest_cluster() const {
  if (n_clusters == 0) return -1;
  return int(std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

std::vector<std::size_t> ClusterResult::members(int cluster_id) const {
  std::vector<std::size_t> out;
  if (cluster_id < 0 || std::size_t(cluster_id) >= n_clusters) return out;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (labels[i] == cluster_id) out.push_back(i);
  return out;
}

namespace {

// Flat k x d center store so centers stay contiguous too.
struct Centers {
  std::size_t k = 0, d = 0;
  std::vector<float> data;
  std::span<float> row(std::size_t c) { return {data.data() + c * d, d}; }
  std::span<const float> row(std::size_t c) const {
    return {data.data() + c * d, d};
  }
};

}  // namespace

ClusterResult kmeans(const common::GradientMatrix& points,
                     const KMeansConfig& cfg, Rng& rng) {
  const std::size_t n = points.rows();
  ClusterResult result;
  if (n == 0) return result;
  const std::size_t k = std::min(cfg.k, n);
  const std::size_t d = points.cols();

  // k-means++ seeding. Seed draws stay on the calling thread so the Rng
  // stream is identical for any pool size; only the distance scans fan
  // out.
  Centers centers{0, d, {}};
  auto push_center = [&](std::size_t idx) {
    const auto p = points.row(idx);
    centers.data.insert(centers.data.end(), p.begin(), p.end());
    ++centers.k;
  };
  push_center(std::size_t(rng.randint(0, int(n) - 1)));
  std::vector<double> min_d2(n, 0.0);
  while (centers.k < k) {
    common::parallel_for(n, [&](std::size_t i) {
      double best = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < centers.k; ++c)
        best = std::min(best, vec::dist2(points.row(i), centers.row(c)));
      min_d2[i] = best;
    });
    double total = 0.0;
    for (const double v : min_d2) total += v;
    if (total <= 0.0) {
      // Every remaining point coincides with an existing center (e.g.
      // duplicate inputs): another center would duplicate one and orphan
      // a cluster, so stop seeding early with fewer centers.
      break;
    }
    // Weighted draw; zero-weight points (exact duplicates of a chosen
    // center) can never be selected, and FP round-off at the end of the
    // scan falls back to the last positive-weight point.
    double r = rng.uniform(0.0, total);
    std::size_t chosen = n;  // sentinel
    for (std::size_t i = 0; i < n; ++i) {
      if (min_d2[i] <= 0.0) continue;
      chosen = i;
      r -= min_d2[i];
      if (r <= 0.0) break;
    }
    assert(chosen < n);
    push_center(chosen);
  }
  const std::size_t k_eff = centers.k;

  std::vector<int> labels(n, 0);
  for (std::size_t iter = 0; iter < cfg.max_iters; ++iter) {
    // Assign (parallel over points; ties go to the lowest center id, so
    // the outcome is thread-count-independent).
    common::parallel_for(n, [&](std::size_t i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (std::size_t c = 0; c < k_eff; ++c) {
        const double d2 = vec::dist2(points.row(i), centers.row(c));
        if (d2 < best) {
          best = d2;
          best_c = int(c);
        }
      }
      labels[i] = best_c;
    });
    // Update.
    std::vector<std::vector<double>> sums(k_eff, std::vector<double>(d, 0.0));
    std::vector<std::size_t> counts(k_eff, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = std::size_t(labels[i]);
      ++counts[c];
      const auto p = points.row(i);
      for (std::size_t j = 0; j < d; ++j) sums[c][j] += p[j];
    }
    // Guard empty clusters: relocate each to the point currently farthest
    // from its assigned center (deterministic: first maximum wins)
    // instead of leaving a dead center around. The donor cluster's stale
    // mean self-corrects on the next iteration, which always runs because
    // the relocation registers as center movement.
    std::vector<bool> frozen(k_eff, false);
    bool relocated = false;
    for (std::size_t c = 0; c < k_eff; ++c) {
      if (counts[c] > 0) continue;
      double far_d2 = -1.0;
      std::size_t far_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d2 =
            vec::dist2(points.row(i), centers.row(std::size_t(labels[i])));
        if (d2 > far_d2) {
          far_d2 = d2;
          far_i = i;
        }
      }
      const auto p = points.row(far_i);
      const auto cr = centers.row(c);
      std::copy(p.begin(), p.end(), cr.begin());
      labels[far_i] = int(c);
      counts[c] = 1;
      frozen[c] = true;  // sums[c] is stale; keep the relocated center
      relocated = true;
    }
    double movement = relocated ? cfg.tol + 1.0 : 0.0;
    for (std::size_t c = 0; c < k_eff; ++c) {
      if (counts[c] == 0 || frozen[c]) continue;
      std::vector<float> nc(d);
      for (std::size_t j = 0; j < d; ++j)
        nc[j] = static_cast<float>(sums[c][j] / double(counts[c]));
      movement += vec::dist2(centers.row(c), nc);
      const auto cr = centers.row(c);
      std::copy(nc.begin(), nc.end(), cr.begin());
    }
    if (movement < cfg.tol) break;
  }

  result.labels = std::move(labels);
  result.n_clusters = k_eff;
  result.sizes.assign(k_eff, 0);
  for (const int l : result.labels) ++result.sizes[std::size_t(l)];
  return result;
}

ClusterResult kmeans(std::span<const std::vector<float>> points,
                     const KMeansConfig& cfg, Rng& rng) {
  return kmeans(common::GradientMatrix::from_vectors(points), cfg, rng);
}

}  // namespace signguard::cluster
