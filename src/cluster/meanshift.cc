#include "cluster/meanshift.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "common/quantiles.h"
#include "common/vecops.h"

namespace signguard::cluster {

double estimate_bandwidth(const common::GradientMatrix& points,
                          double quantile) {
  // sklearn-style estimator: for each point take the distance to its
  // k-th nearest neighbour (k = quantile * n) and average. This tracks
  // the local cluster scale rather than the global spread, so tight
  // majority clusters get a bandwidth that still covers them.
  const std::size_t n = points.rows();
  if (n < 2) return 1e-3;
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(quantile * double(n)));
  std::vector<double> knn(n, 0.0);
  common::parallel_chunks(
      n, [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<double> row(n);  // one scratch buffer per chunk
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < n; ++j)
            row[j] = vec::dist(points.row(i), points.row(j));
          std::nth_element(row.begin(), row.begin() + std::min(k, n - 1),
                           row.end());
          knn[i] = row[std::min(k, n - 1)];
        }
      });
  double acc = 0.0;
  for (const double v : knn) acc += v;
  return std::max(acc / double(n), 1e-3);
}

double estimate_bandwidth(std::span<const std::vector<float>> points,
                          double quantile) {
  return estimate_bandwidth(common::GradientMatrix::from_vectors(points),
                            quantile);
}

ClusterResult mean_shift(const common::GradientMatrix& points,
                         const MeanShiftConfig& cfg) {
  ClusterResult result;
  const std::size_t n = points.rows();
  if (n == 0) return result;
  const std::size_t d = points.cols();
  const double bw = cfg.bandwidth > 0.0
                        ? cfg.bandwidth
                        : estimate_bandwidth(points, cfg.bandwidth_quantile);
  const double bw2 = bw * bw;

  // Shift every point to its local mode under the flat kernel. Each
  // point's trajectory only reads the (immutable) input matrix, so the
  // per-point loops run independently on the pool.
  common::GradientMatrix modes = points;
  common::parallel_chunks(
      n, [&](std::size_t chunk_begin, std::size_t chunk_end, std::size_t) {
        std::vector<double> win(d);  // one window accumulator per chunk
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const auto mode = modes.row(i);
          for (std::size_t iter = 0; iter < cfg.max_iters; ++iter) {
            std::fill(win.begin(), win.end(), 0.0);
            std::size_t count = 0;
            for (std::size_t j = 0; j < n; ++j) {
              if (vec::dist2(mode, points.row(j)) <= bw2) {
                ++count;
                const auto p = points.row(j);
                for (std::size_t c = 0; c < d; ++c) win[c] += p[c];
              }
            }
            // A point normally sits inside its own window; a non-finite
            // feature row (possible with adversarial inputs) fails every
            // distance test. Leave it where it is — it will isolate into
            // its own cluster.
            if (count == 0) break;
            double shift2 = 0.0;
            for (std::size_t c = 0; c < d; ++c) {
              const double nc = win[c] / double(count);
              const double delta = nc - double(mode[c]);
              shift2 += delta * delta;
              mode[c] = static_cast<float>(nc);
            }
            if (shift2 < cfg.tol * cfg.tol) break;
          }
        }
      });

  // Merge modes within one bandwidth of each other (sklearn semantics)
  // and label points by merged mode. Sequential: first-come cluster ids
  // keep the labelling deterministic.
  const double merge2 = bw * bw;
  std::vector<std::size_t> center_mode;  // index into modes
  result.labels.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    int assigned = -1;
    for (std::size_t c = 0; c < center_mode.size(); ++c) {
      if (vec::dist2(modes.row(i), modes.row(center_mode[c])) <= merge2) {
        assigned = int(c);
        break;
      }
    }
    if (assigned < 0) {
      center_mode.push_back(i);
      assigned = int(center_mode.size()) - 1;
    }
    result.labels[i] = assigned;
  }
  result.n_clusters = center_mode.size();
  result.sizes.assign(result.n_clusters, 0);
  for (const int l : result.labels) ++result.sizes[std::size_t(l)];
  return result;
}

ClusterResult mean_shift(std::span<const std::vector<float>> points,
                         const MeanShiftConfig& cfg) {
  return mean_shift(common::GradientMatrix::from_vectors(points), cfg);
}

}  // namespace signguard::cluster
