#include "cluster/meanshift.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/quantiles.h"
#include "common/vecops.h"

namespace signguard::cluster {

double estimate_bandwidth(std::span<const std::vector<float>> points,
                          double quantile) {
  // sklearn-style estimator: for each point take the distance to its
  // k-th nearest neighbour (k = quantile * n) and average. This tracks
  // the local cluster scale rather than the global spread, so tight
  // majority clusters get a bandwidth that still covers them.
  const std::size_t n = points.size();
  if (n < 2) return 1e-3;
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(quantile * double(n)));
  std::vector<double> row(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      row[j] = vec::dist(points[i], points[j]);
    std::nth_element(row.begin(), row.begin() + std::min(k, n - 1),
                     row.end());
    acc += row[std::min(k, n - 1)];
  }
  return std::max(acc / double(n), 1e-3);
}

ClusterResult mean_shift(std::span<const std::vector<float>> points,
                         const MeanShiftConfig& cfg) {
  ClusterResult result;
  const std::size_t n = points.size();
  if (n == 0) return result;
  const std::size_t d = points.front().size();
  const double bw = cfg.bandwidth > 0.0
                        ? cfg.bandwidth
                        : estimate_bandwidth(points, cfg.bandwidth_quantile);
  const double bw2 = bw * bw;

  // Shift every point to its local mode under the flat kernel.
  std::vector<std::vector<float>> modes(points.begin(), points.end());
  std::vector<double> win(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t iter = 0; iter < cfg.max_iters; ++iter) {
      std::fill(win.begin(), win.end(), 0.0);
      std::size_t count = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (vec::dist2(modes[i], points[j]) <= bw2) {
          ++count;
          for (std::size_t k = 0; k < d; ++k) win[k] += points[j][k];
        }
      }
      // A point normally sits inside its own window; a non-finite feature
      // row (possible with adversarial inputs) fails every distance test.
      // Leave it where it is — it will isolate into its own cluster.
      if (count == 0) break;
      double shift2 = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        const double nk = win[k] / double(count);
        const double delta = nk - double(modes[i][k]);
        shift2 += delta * delta;
        modes[i][k] = static_cast<float>(nk);
      }
      if (shift2 < cfg.tol * cfg.tol) break;
    }
  }

  // Merge modes within one bandwidth of each other (sklearn semantics)
  // and label points by merged mode.
  const double merge2 = bw * bw;
  std::vector<std::vector<float>> centers;
  result.labels.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    int assigned = -1;
    for (std::size_t c = 0; c < centers.size(); ++c) {
      if (vec::dist2(modes[i], centers[c]) <= merge2) {
        assigned = int(c);
        break;
      }
    }
    if (assigned < 0) {
      centers.push_back(modes[i]);
      assigned = int(centers.size()) - 1;
    }
    result.labels[i] = assigned;
  }
  result.n_clusters = centers.size();
  result.sizes.assign(result.n_clusters, 0);
  for (const int l : result.labels) ++result.sizes[std::size_t(l)];
  return result;
}

}  // namespace signguard::cluster
