#include "data/partition.h"

#include <algorithm>
#include <cassert>

namespace signguard::data {

ClientIndices iid_partition(std::size_t n_samples, std::size_t n_clients,
                            Rng& rng) {
  assert(n_clients > 0);
  std::vector<std::size_t> perm(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) perm[i] = i;
  rng.shuffle(perm);
  ClientIndices out(n_clients);
  for (std::size_t i = 0; i < n_samples; ++i)
    out[i % n_clients].push_back(perm[i]);
  return out;
}

ClientIndices noniid_partition(const Dataset& ds, std::size_t n_clients,
                               double s, Rng& rng) {
  assert(n_clients > 0);
  assert(s >= 0.0 && s <= 1.0);
  const std::size_t n_samples = ds.size();
  std::vector<std::size_t> perm(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) perm[i] = i;
  rng.shuffle(perm);

  const std::size_t n_iid = static_cast<std::size_t>(s * double(n_samples));
  ClientIndices out(n_clients);

  // IID part: spread the first n_iid samples round-robin.
  for (std::size_t i = 0; i < n_iid; ++i)
    out[i % n_clients].push_back(perm[i]);

  // Skewed part: sort remaining samples by label, cut into 2n shards and
  // hand each client two random shards.
  std::vector<std::size_t> rest(perm.begin() + std::ptrdiff_t(n_iid),
                                perm.end());
  std::stable_sort(rest.begin(), rest.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ds.y[a] < ds.y[b];
                   });
  const std::size_t n_shards = 2 * n_clients;
  std::vector<std::size_t> shard_order(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) shard_order[i] = i;
  rng.shuffle(shard_order);

  const std::size_t shard_size = rest.size() / n_shards;
  for (std::size_t c = 0; c < n_clients; ++c) {
    for (const std::size_t shard : {shard_order[2 * c], shard_order[2 * c + 1]}) {
      const std::size_t begin = shard * shard_size;
      // The final shard also absorbs the remainder.
      const std::size_t end =
          (shard == n_shards - 1) ? rest.size() : begin + shard_size;
      for (std::size_t i = begin; i < end; ++i) out[c].push_back(rest[i]);
    }
  }
  return out;
}

std::vector<std::size_t> label_histogram(
    const Dataset& ds, const std::vector<std::size_t>& idx) {
  std::vector<std::size_t> hist(ds.num_classes, 0);
  for (const std::size_t i : idx) ++hist[std::size_t(ds.y[i])];
  return hist;
}

}  // namespace signguard::data
