#pragma once
// In-memory labelled dataset plus batch assembly. Image samples store
// flattened pixel tensors; text samples store token ids as floats (the
// Embedding layer consumes ids in float form). A Dataset is a value type:
// partitioners hand out index lists, never copies of the data.

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace signguard::data {

struct Dataset {
  std::vector<std::vector<float>> x;       // one flat feature vector per sample
  std::vector<int> y;                      // labels in [0, num_classes)
  std::vector<std::size_t> sample_shape;   // e.g. {1,16,16}, {3,16,16}, {16}
  std::size_t num_classes = 0;

  std::size_t size() const { return x.size(); }
  std::size_t feature_dim() const { return x.empty() ? 0 : x.front().size(); }
};

// Stacks the selected samples into a [B, ...sample_shape] tensor.
// Pure function of the const dataset — callable concurrently from the
// trainer's parallel client loop.
nn::Tensor make_batch(const Dataset& ds, std::span<const std::size_t> indices);

// Allocation-free variant: writes into `out`, reusing its capacity. With
// a stable batch size this does no heap work at all (the client's
// per-batch hot path).
void make_batch_into(const Dataset& ds, std::span<const std::size_t> indices,
                     nn::Tensor& out);

// Labels of the selected samples, with optional label flipping
// l -> C-1-l (the paper's label-flip data poisoning attack, §V-B).
// Also const-pure / thread-safe.
std::vector<int> batch_labels(const Dataset& ds,
                              std::span<const std::size_t> indices,
                              bool flip_labels = false);

// Capacity-reusing variant of batch_labels.
void batch_labels_into(const Dataset& ds,
                       std::span<const std::size_t> indices,
                       std::vector<int>& out, bool flip_labels = false);

// Uniform random permutation of sample order (so sequential shards are
// not single-class). Generators call this after emitting class blocks.
void shuffle_samples(Dataset& ds, Rng& rng);

}  // namespace signguard::data
