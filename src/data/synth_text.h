#pragma once
// Deterministic synthetic topic-classification text data — the offline
// stand-in for AG-News (substitution #1 in DESIGN.md). Each of the 4
// classes owns a set of topic tokens; a document is a fixed-length token
// sequence mixing topic tokens with shared background vocabulary.

#include <cstdint>

#include "data/synth_image.h"  // TrainTest

namespace signguard::data {

struct SynthTextConfig {
  std::size_t classes = 4;
  std::size_t vocab = 1000;
  std::size_t seq_len = 16;
  std::size_t topic_words_per_class = 40;
  double topic_prob = 0.3;           // chance a token is a topic word
  std::size_t train_per_class = 750;
  std::size_t test_per_class = 250;
  std::uint64_t seed = 44;
};

TrainTest make_synth_text(const SynthTextConfig& cfg);

}  // namespace signguard::data
