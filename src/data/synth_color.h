#pragma once
// Deterministic synthetic 3-channel image data — the offline stand-in for
// CIFAR-10 (substitution #1 in DESIGN.md). Each class owns a colour/texture
// field: per-channel sinusoidal gratings with class-specific frequency,
// phase and orientation plus a colour bias. Harder than the grayscale task
// (more noise, overlapping textures), mirroring CIFAR-10 vs MNIST.

#include <cstdint>

#include "data/synth_image.h"  // TrainTest

namespace signguard::data {

struct SynthColorConfig {
  std::size_t classes = 10;
  std::size_t hw = 16;               // image is 3 x hw x hw
  std::size_t train_per_class = 500;
  std::size_t test_per_class = 200;
  double noise = 1.1;   // heavy noise: classes overlap like natural images
  int max_shift = 3;
  std::uint64_t seed = 33;
};

TrainTest make_synth_color(const SynthColorConfig& cfg);

}  // namespace signguard::data
