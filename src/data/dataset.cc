#include "data/dataset.h"

#include <cassert>

namespace signguard::data {

nn::Tensor make_batch(const Dataset& ds,
                      std::span<const std::size_t> indices) {
  assert(!indices.empty());
  std::vector<std::size_t> shape;
  shape.push_back(indices.size());
  shape.insert(shape.end(), ds.sample_shape.begin(), ds.sample_shape.end());
  nn::Tensor batch(shape);
  const std::size_t dim = ds.feature_dim();
  for (std::size_t b = 0; b < indices.size(); ++b) {
    assert(indices[b] < ds.size());
    const auto& sample = ds.x[indices[b]];
    assert(sample.size() == dim);
    float* out = batch.data() + b * dim;
    for (std::size_t i = 0; i < dim; ++i) out[i] = sample[i];
  }
  return batch;
}

std::vector<int> batch_labels(const Dataset& ds,
                              std::span<const std::size_t> indices,
                              bool flip_labels) {
  std::vector<int> labels(indices.size());
  const int c = static_cast<int>(ds.num_classes);
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const int l = ds.y[indices[b]];
    labels[b] = flip_labels ? (c - 1 - l) : l;
  }
  return labels;
}

void shuffle_samples(Dataset& ds, Rng& rng) {
  std::vector<std::size_t> perm(ds.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);
  std::vector<std::vector<float>> px(ds.size());
  std::vector<int> py(ds.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    px[i] = std::move(ds.x[perm[i]]);
    py[i] = ds.y[perm[i]];
  }
  ds.x = std::move(px);
  ds.y = std::move(py);
}

}  // namespace signguard::data
