#include "data/dataset.h"

#include <algorithm>
#include <cassert>

namespace signguard::data {

nn::Tensor make_batch(const Dataset& ds,
                      std::span<const std::size_t> indices) {
  nn::Tensor batch;
  make_batch_into(ds, indices, batch);
  return batch;
}

void make_batch_into(const Dataset& ds, std::span<const std::size_t> indices,
                     nn::Tensor& out) {
  assert(!indices.empty());
  // Build the [B, ...sample_shape] shape only when it actually changed;
  // with a stable batch size the whole call allocates nothing.
  const auto& ss = ds.sample_shape;
  const bool same_shape =
      out.ndim() == ss.size() + 1 && out.dim(0) == indices.size() &&
      std::equal(ss.begin(), ss.end(), out.shape().begin() + 1);
  if (!same_shape) {
    std::vector<std::size_t> shape;
    shape.reserve(ss.size() + 1);
    shape.push_back(indices.size());
    shape.insert(shape.end(), ss.begin(), ss.end());
    out.resize(shape);
  }
  const std::size_t dim = ds.feature_dim();
  for (std::size_t b = 0; b < indices.size(); ++b) {
    assert(indices[b] < ds.size());
    const auto& sample = ds.x[indices[b]];
    assert(sample.size() == dim);
    float* dst = out.data() + b * dim;
    for (std::size_t i = 0; i < dim; ++i) dst[i] = sample[i];
  }
}

std::vector<int> batch_labels(const Dataset& ds,
                              std::span<const std::size_t> indices,
                              bool flip_labels) {
  std::vector<int> labels;
  batch_labels_into(ds, indices, labels, flip_labels);
  return labels;
}

void batch_labels_into(const Dataset& ds,
                       std::span<const std::size_t> indices,
                       std::vector<int>& out, bool flip_labels) {
  out.resize(indices.size());
  const int c = static_cast<int>(ds.num_classes);
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const int l = ds.y[indices[b]];
    out[b] = flip_labels ? (c - 1 - l) : l;
  }
}

void shuffle_samples(Dataset& ds, Rng& rng) {
  std::vector<std::size_t> perm(ds.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);
  std::vector<std::vector<float>> px(ds.size());
  std::vector<int> py(ds.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    px[i] = std::move(ds.x[perm[i]]);
    py[i] = ds.y[perm[i]];
  }
  ds.x = std::move(px);
  ds.y = std::move(py);
}

}  // namespace signguard::data
