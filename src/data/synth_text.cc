#include "data/synth_text.h"

#include <cassert>

#include "common/rng.h"

namespace signguard::data {

namespace {

std::vector<float> sample_document(std::span<const int> topic_words,
                                   const SynthTextConfig& cfg, Rng& rng) {
  std::vector<float> doc(cfg.seq_len);
  for (std::size_t t = 0; t < cfg.seq_len; ++t) {
    int token = 0;
    if (rng.bernoulli(cfg.topic_prob)) {
      token = topic_words[std::size_t(
          rng.randint(0, int(topic_words.size()) - 1))];
    } else {
      token = rng.randint(0, int(cfg.vocab) - 1);
    }
    doc[t] = static_cast<float>(token);
  }
  return doc;
}

}  // namespace

TrainTest make_synth_text(const SynthTextConfig& cfg) {
  assert(cfg.topic_words_per_class * cfg.classes <= cfg.vocab);
  Rng rng(cfg.seed);

  // Disjoint topic vocabularies drawn from a shuffled token universe.
  std::vector<int> universe(cfg.vocab);
  for (std::size_t i = 0; i < cfg.vocab; ++i) universe[i] = int(i);
  rng.shuffle(universe);
  std::vector<std::vector<int>> topics(cfg.classes);
  std::size_t next = 0;
  for (std::size_t c = 0; c < cfg.classes; ++c)
    for (std::size_t w = 0; w < cfg.topic_words_per_class; ++w)
      topics[c].push_back(universe[next++]);

  TrainTest out;
  for (Dataset* ds : {&out.train, &out.test}) {
    ds->sample_shape = {cfg.seq_len};
    ds->num_classes = cfg.classes;
  }
  for (std::size_t c = 0; c < cfg.classes; ++c) {
    for (std::size_t i = 0; i < cfg.train_per_class; ++i) {
      out.train.x.push_back(sample_document(topics[c], cfg, rng));
      out.train.y.push_back(static_cast<int>(c));
    }
    for (std::size_t i = 0; i < cfg.test_per_class; ++i) {
      out.test.x.push_back(sample_document(topics[c], cfg, rng));
      out.test.y.push_back(static_cast<int>(c));
    }
  }
  shuffle_samples(out.train, rng);
  shuffle_samples(out.test, rng);
  return out;
}

}  // namespace signguard::data
