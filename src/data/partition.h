#pragma once
// Federated partitioners: assignment of training-sample indices to
// clients. IID partitioning splits a random permutation evenly; the
// non-IID partitioner implements the paper's §VI-B scheme exactly: an
// s-fraction of the data is spread IID, the remaining (1-s)-fraction is
// sorted by label, cut into 2·n shards, and every client receives two
// random shards.

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace signguard::data {

using ClientIndices = std::vector<std::vector<std::size_t>>;

// Even IID split of [0, ds.size()) into n_clients shards.
ClientIndices iid_partition(std::size_t n_samples, std::size_t n_clients,
                            Rng& rng);

// Sort-and-partition non-IID split with IID fraction s in [0, 1].
// s == 1 reduces to the IID partition; smaller s is more skewed.
ClientIndices noniid_partition(const Dataset& ds, std::size_t n_clients,
                               double s, Rng& rng);

// Label distribution of one client's shard: counts per class.
std::vector<std::size_t> label_histogram(const Dataset& ds,
                                         const std::vector<std::size_t>& idx);

}  // namespace signguard::data
