#include "data/synth_color.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace signguard::data {

namespace {

struct ColorArchetype {
  // Per-channel grating parameters.
  double freq[3];
  double phase[3];
  double angle[3];
  double bias[3];
};

ColorArchetype make_color_archetype(Rng& rng) {
  ColorArchetype a;
  for (int ch = 0; ch < 3; ++ch) {
    a.freq[ch] = rng.uniform(0.4, 1.6);
    a.phase[ch] = rng.uniform(0.0, 6.28318);
    a.angle[ch] = rng.uniform(0.0, 3.14159);
    a.bias[ch] = rng.uniform(-0.4, 0.4);
  }
  return a;
}

std::vector<float> sample_from(const ColorArchetype& a, std::size_t hw,
                               double noise, int max_shift, Rng& rng) {
  const int dy = rng.randint(-max_shift, max_shift);
  const int dx = rng.randint(-max_shift, max_shift);
  std::vector<float> img(3 * hw * hw);
  for (int ch = 0; ch < 3; ++ch) {
    const double cs = std::cos(a.angle[ch]);
    const double sn = std::sin(a.angle[ch]);
    for (std::size_t y = 0; y < hw; ++y) {
      for (std::size_t x = 0; x < hw; ++x) {
        const double u = (double(int(y) + dy) * cs + double(int(x) + dx) * sn);
        double v = a.bias[ch] + 0.5 * std::sin(a.freq[ch] * u + a.phase[ch]);
        v += rng.normal(0.0, noise);
        img[std::size_t(ch) * hw * hw + y * hw + x] =
            std::clamp(static_cast<float>(v), -2.0f, 2.0f);
      }
    }
  }
  return img;
}

}  // namespace

TrainTest make_synth_color(const SynthColorConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<ColorArchetype> archetypes;
  archetypes.reserve(cfg.classes);
  for (std::size_t c = 0; c < cfg.classes; ++c)
    archetypes.push_back(make_color_archetype(rng));

  TrainTest out;
  for (Dataset* ds : {&out.train, &out.test}) {
    ds->sample_shape = {3, cfg.hw, cfg.hw};
    ds->num_classes = cfg.classes;
  }
  for (std::size_t c = 0; c < cfg.classes; ++c) {
    for (std::size_t i = 0; i < cfg.train_per_class; ++i) {
      out.train.x.push_back(
          sample_from(archetypes[c], cfg.hw, cfg.noise, cfg.max_shift, rng));
      out.train.y.push_back(static_cast<int>(c));
    }
    for (std::size_t i = 0; i < cfg.test_per_class; ++i) {
      out.test.x.push_back(
          sample_from(archetypes[c], cfg.hw, cfg.noise, cfg.max_shift, rng));
      out.test.y.push_back(static_cast<int>(c));
    }
  }
  shuffle_samples(out.train, rng);
  shuffle_samples(out.test, rng);
  return out;
}

}  // namespace signguard::data
