#include "data/synth_image.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace signguard::data {

namespace {

// Archetype pattern: a few Gaussian intensity blobs at class-specific
// positions, normalized into [0, 1].
std::vector<float> make_archetype(std::size_t hw, std::size_t blobs,
                                  Rng& rng) {
  std::vector<float> img(hw * hw, 0.0f);
  for (std::size_t b = 0; b < blobs; ++b) {
    const double cy = rng.uniform(2.0, double(hw) - 2.0);
    const double cx = rng.uniform(2.0, double(hw) - 2.0);
    const double sigma = rng.uniform(1.2, 2.8);
    const double amp = rng.uniform(0.6, 1.0);
    for (std::size_t y = 0; y < hw; ++y) {
      for (std::size_t x = 0; x < hw; ++x) {
        const double d2 = (double(y) - cy) * (double(y) - cy) +
                          (double(x) - cx) * (double(x) - cx);
        img[y * hw + x] +=
            static_cast<float>(amp * std::exp(-d2 / (2.0 * sigma * sigma)));
      }
    }
  }
  const float mx = *std::max_element(img.begin(), img.end());
  if (mx > 0.0f)
    for (auto& v : img) v /= mx;
  return img;
}

std::vector<float> sample_from(const std::vector<float>& archetype,
                               std::size_t hw, double noise, int max_shift,
                               Rng& rng) {
  const int dy = rng.randint(-max_shift, max_shift);
  const int dx = rng.randint(-max_shift, max_shift);
  std::vector<float> img(hw * hw, 0.0f);
  for (std::size_t y = 0; y < hw; ++y) {
    for (std::size_t x = 0; x < hw; ++x) {
      const int sy = int(y) - dy;
      const int sx = int(x) - dx;
      float v = 0.0f;
      if (sy >= 0 && sy < int(hw) && sx >= 0 && sx < int(hw))
        v = archetype[std::size_t(sy) * hw + std::size_t(sx)];
      v += static_cast<float>(rng.normal(0.0, noise));
      img[y * hw + x] = std::clamp(v, -1.0f, 2.0f);
    }
  }
  return img;
}

}  // namespace

TrainTest make_synth_image(const SynthImageConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<std::vector<float>> archetypes;
  archetypes.reserve(cfg.classes);
  for (std::size_t c = 0; c < cfg.classes; ++c)
    archetypes.push_back(make_archetype(cfg.hw, cfg.blobs_per_class, rng));

  TrainTest out;
  for (Dataset* ds : {&out.train, &out.test}) {
    ds->sample_shape = {1, cfg.hw, cfg.hw};
    ds->num_classes = cfg.classes;
  }
  for (std::size_t c = 0; c < cfg.classes; ++c) {
    for (std::size_t i = 0; i < cfg.train_per_class; ++i) {
      out.train.x.push_back(
          sample_from(archetypes[c], cfg.hw, cfg.noise, cfg.max_shift, rng));
      out.train.y.push_back(static_cast<int>(c));
    }
    for (std::size_t i = 0; i < cfg.test_per_class; ++i) {
      out.test.x.push_back(
          sample_from(archetypes[c], cfg.hw, cfg.noise, cfg.max_shift, rng));
      out.test.y.push_back(static_cast<int>(c));
    }
  }
  shuffle_samples(out.train, rng);
  shuffle_samples(out.test, rng);
  return out;
}

SynthImageConfig mnist_like_config(std::uint64_t seed) {
  SynthImageConfig cfg;
  cfg.noise = 0.3;
  cfg.seed = seed;
  return cfg;
}

SynthImageConfig fashion_like_config(std::uint64_t seed) {
  SynthImageConfig cfg;
  cfg.noise = 0.55;     // noisier -> harder, like Fashion-MNIST vs MNIST
  cfg.blobs_per_class = 6;
  cfg.seed = seed;
  return cfg;
}

}  // namespace signguard::data
