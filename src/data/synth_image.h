#pragma once
// Deterministic synthetic grayscale image classification data — the
// offline stand-in for MNIST / Fashion-MNIST (substitution #1 in
// DESIGN.md). Each class owns a procedurally generated archetype pattern
// (a sum of random Gaussian blobs); samples are noisy, randomly shifted
// copies of their class archetype. The `difficulty` noise level separates
// the "MNIST-like" (easy) and "Fashion-like" (harder) variants.

#include <cstdint>

#include "data/dataset.h"

namespace signguard::data {

struct SynthImageConfig {
  std::size_t classes = 10;
  std::size_t hw = 16;               // image is hw x hw, 1 channel
  std::size_t train_per_class = 600;
  std::size_t test_per_class = 200;
  double noise = 0.35;               // pixel Gaussian noise stddev
  int max_shift = 2;                 // uniform +/- translation in pixels
  std::size_t blobs_per_class = 4;   // archetype complexity
  std::uint64_t seed = 1;            // archetype + sampling seed
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

TrainTest make_synth_image(const SynthImageConfig& cfg);

// Convenience presets matching the paper's two grayscale tasks.
SynthImageConfig mnist_like_config(std::uint64_t seed = 11);
SynthImageConfig fashion_like_config(std::uint64_t seed = 22);

}  // namespace signguard::data
