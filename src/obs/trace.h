#pragma once
// Timing spans — plane 2 of the observability subsystem.
//
// An RAII Span records a {name, start_ns, dur_ns, arg} complete event
// into the calling thread's ring buffer (one lane per thread; pool
// helpers get their own lanes, so a Perfetto view shows one track per
// worker). The clock is steady_clock nanoseconds from a process-wide
// epoch. Spans are nondeterministic by nature and never feed the
// deterministic counter plane (obs/metrics.h) or any golden output.
//
// Cost model: with tracing disabled (the default), a Span is one relaxed
// atomic load and a branch — bench/obs_microbench pins the disabled-path
// overhead of a fully instrumented SignGuard round at <= 2%. Tracing is
// enabled by the SIGNGUARD_TRACE environment variable (any value but ""
// or "0"), overridable via set_trace_enabled(); building with
// -DSIGNGUARD_NO_TRACE compiles Span out entirely.
//
// Exporters: chrome_trace_json() emits the Chrome trace_event format
// (load the file in Perfetto / chrome://tracing; spans nest by
// containment per lane), write_prometheus() the text exposition of span
// aggregates plus an optional registry's counters.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace signguard::obs {

namespace detail {
// -1 = unresolved (resolve from SIGNGUARD_TRACE on first query).
extern std::atomic<int> g_trace;
int resolve_trace();
std::uint64_t trace_now_ns();
void trace_record(const char* name, std::uint64_t start_ns, std::int64_t arg);
}  // namespace detail

inline bool trace_enabled() {
  const int v = detail::g_trace.load(std::memory_order_relaxed);
  return v >= 0 ? v == 1 : detail::resolve_trace() == 1;
}
void set_trace_enabled(bool on);

// Interns a dynamic label (e.g. a scenario id) into process-lifetime
// storage and returns a stable pointer for Span names. Deduplicated;
// never freed.
const char* intern_name(const std::string& s);

// One completed span. `arg` < 0 means no argument; otherwise it is
// exported as args.v (round number, shard index, ...).
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::int64_t arg = -1;
};

#if defined(SIGNGUARD_NO_TRACE)
class Span {
 public:
  explicit Span(const char*, std::int64_t = -1) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};
#else
class Span {
 public:
  explicit Span(const char* name, std::int64_t arg = -1)
      : name_(trace_enabled() ? name : nullptr), arg_(arg) {
    if (name_ != nullptr) start_ns_ = detail::trace_now_ns();
  }
  ~Span() {
    if (name_ != nullptr) detail::trace_record(name_, start_ns_, arg_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::int64_t arg_;
  std::uint64_t start_ns_ = 0;
};
#endif

// Collector controls. reset only with no spans in flight (between runs).
void trace_reset();
std::uint64_t trace_dropped();  // events lost to full lane rings
// Per-lane snapshot, each lane sorted by start_ns (for tests/exporters).
std::vector<std::vector<TraceEvent>> trace_snapshot();

// Chrome trace_event JSON document (Perfetto-loadable).
std::string chrome_trace_json();
// Prometheus text exposition: span totals/counts per name, plus the
// registry's counter totals when one is given.
void write_prometheus(std::ostream& os,
                      const MetricsRegistry* reg = nullptr);

// Combined stage guard for the trainer's coordinator thread: sets the
// thread context's current stage (so count() attributes to it), measures
// the scope into MetricsRegistry::stage_ms when timing is on, and emits
// a span (named after the stage unless overridden) when tracing is on.
class StageScope {
 public:
  explicit StageScope(Stage s, const char* span_name = nullptr,
                      std::int64_t arg = -1);
  ~StageScope();
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Stage stage_;
  Stage saved_;
  MetricsRegistry* timed_reg_ = nullptr;
  std::uint64_t t0_ns_ = 0;
  Span span_;
};

// Span name for a stage ("stage/aggregate", ...): static storage, usable
// as a Span name directly.
const char* stage_span_name(Stage s);

}  // namespace signguard::obs
