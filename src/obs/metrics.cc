#include "obs/metrics.h"

#include <ostream>

#include "common/parallel.h"

namespace signguard::obs {

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kClientCompute: return "client_compute";
    case Stage::kEncode: return "encode";
    case Stage::kUplink: return "uplink";
    case Stage::kDecode: return "decode";
    case Stage::kFilter: return "filter";
    case Stage::kAggregate: return "aggregate";
    case Stage::kMerge: return "merge";
    case Stage::kEval: return "eval";
    case Stage::kCheckpoint: return "checkpoint";
    case Stage::kOther: return "other";
  }
  return "?";
}

const char* to_string(Counter c) {
  switch (c) {
    case Counter::kRowsEncoded: return "rows_encoded";
    case Counter::kRowsDecoded: return "rows_decoded";
    case Counter::kWireBytes: return "wire_bytes";
    case Counter::kDenseBytes: return "dense_bytes";
    case Counter::kDecodeRejects: return "decode_rejects";
    case Counter::kFilterAdmits: return "filter_admits";
    case Counter::kFilterRejects: return "filter_rejects";
    case Counter::kGemmFlops: return "gemm_flops";
    case Counter::kCheckpointBytes: return "checkpoint_bytes";
    case Counter::kRetryAttempts: return "retry_attempts";
    case Counter::kShardSurvivors: return "shard_survivors";
  }
  return "?";
}

namespace {

// Stable per-thread shard slot: threads map onto the fixed shard set in
// arrival order. Which thread lands in which shard never affects the
// merged sums (u64 addition commutes), only false-sharing behavior.
std::size_t shard_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

MetricsRegistry::MetricsRegistry(bool timing)
    : timing_(timing), shards_(kShards) {}

void MetricsRegistry::begin_round(std::uint64_t round) {
  if (in_round_) end_round();
  cur_ = RoundCost{};
  cur_.round = round;
  in_round_ = true;
}

void MetricsRegistry::end_round() {
  if (!in_round_) return;
  // Canonical merge order: shard 0..kShards-1, stage-major, counter-minor
  // — and the sums are order-free anyway, so the record is bitwise
  // identical for any thread count and submission order.
  for (Shard& sh : shards_)
    for (std::size_t s = 0; s < kNumStages; ++s)
      for (std::size_t c = 0; c < kNumCounters; ++c)
        cur_.counters[s][c] += sh.c[s][c].exchange(0, std::memory_order_relaxed);
  rounds_.push_back(cur_);
  in_round_ = false;
}

void MetricsRegistry::add(Stage s, Counter c, std::uint64_t v) {
  Shard& sh = shards_[shard_slot() % kShards];
  sh.c[std::size_t(s)][std::size_t(c)].fetch_add(v, std::memory_order_relaxed);
  sh.ops.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::add_ms(Stage s, double ms) {
  if (timing_ && in_round_) cur_.stage_ms[std::size_t(s)] += ms;
}

RoundCost MetricsRegistry::totals() const {
  RoundCost t;
  for (const RoundCost& r : rounds_) {
    for (std::size_t s = 0; s < kNumStages; ++s) {
      for (std::size_t c = 0; c < kNumCounters; ++c)
        t.counters[s][c] += r.counters[s][c];
      t.stage_ms[s] += r.stage_ms[s];
    }
  }
  return t;
}

std::uint64_t MetricsRegistry::ops() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) n += sh.ops.load(std::memory_order_relaxed);
  return n;
}

RoundCost MetricsRegistry::snapshot_current() const {
  RoundCost snap = cur_;
  for (const Shard& sh : shards_)
    for (std::size_t s = 0; s < kNumStages; ++s)
      for (std::size_t c = 0; c < kNumCounters; ++c)
        snap.counters[s][c] += sh.c[s][c].load(std::memory_order_relaxed);
  return snap;
}

namespace {

void write_record(common::ByteWriter& w, const RoundCost& r) {
  w.u64(r.round);
  for (std::size_t s = 0; s < kNumStages; ++s)
    for (std::size_t c = 0; c < kNumCounters; ++c)
      w.u64(r.counters[s][c]);
  for (std::size_t s = 0; s < kNumStages; ++s) w.f64(r.stage_ms[s]);
}

RoundCost read_record(common::ByteReader& r) {
  RoundCost rec;
  rec.round = r.u64();
  for (std::size_t s = 0; s < kNumStages; ++s)
    for (std::size_t c = 0; c < kNumCounters; ++c)
      rec.counters[s][c] = r.u64();
  for (std::size_t s = 0; s < kNumStages; ++s) rec.stage_ms[s] = r.f64();
  return rec;
}

}  // namespace

void MetricsRegistry::serialize(common::ByteWriter& w) const {
  // The open round (a checkpoint is written after the round's work but
  // before the trainer's end_round) is snapshotted as if closed.
  w.u64(rounds_.size() + (in_round_ ? 1 : 0));
  for (const RoundCost& r : rounds_) write_record(w, r);
  if (in_round_) write_record(w, snapshot_current());
}

void MetricsRegistry::restore(common::ByteReader& r) {
  rounds_.clear();
  const std::uint64_t n = r.u64();
  rounds_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) rounds_.push_back(read_record(r));
  cur_ = RoundCost{};
  in_round_ = false;
  for (Shard& sh : shards_)
    for (std::size_t s = 0; s < kNumStages; ++s)
      for (std::size_t c = 0; c < kNumCounters; ++c)
        sh.c[s][c].store(0, std::memory_order_relaxed);
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  const RoundCost t = totals();
  os << "# TYPE signguard_work_total counter\n";
  for (std::size_t s = 0; s < kNumStages; ++s)
    for (std::size_t c = 0; c < kNumCounters; ++c)
      if (t.counters[s][c] != 0)
        os << "signguard_work_total{stage=\"" << to_string(Stage(s))
           << "\",counter=\"" << to_string(Counter(c)) << "\"} "
           << t.counters[s][c] << "\n";
  if (timing_) {
    os << "# TYPE signguard_stage_seconds_total counter\n";
    for (std::size_t s = 0; s < kNumStages; ++s)
      if (t.stage_ms[s] != 0.0)
        os << "signguard_stage_seconds_total{stage=\"" << to_string(Stage(s))
           << "\"} " << t.stage_ms[s] / 1000.0 << "\n";
  }
  os << "signguard_rounds_total " << rounds_.size() << "\n";
}

namespace detail {

thread_local ObsContext t_ctx;

const ObsContext& inherited_context() {
  static const ObsContext empty;
  const void* p = common::task_context();
  return p != nullptr ? *static_cast<const ObsContext*>(p) : empty;
}

}  // namespace detail

ScopedMetrics::ScopedMetrics(MetricsRegistry* reg)
    : saved_(detail::t_ctx), saved_task_(common::task_context()) {
  detail::t_ctx.reg = reg;
  detail::t_ctx.stage = Stage::kOther;
  common::set_task_context(&detail::t_ctx);
}

ScopedMetrics::~ScopedMetrics() {
  detail::t_ctx = saved_;
  common::set_task_context(saved_task_);
}

}  // namespace signguard::obs
