#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <ostream>
#include <set>

namespace signguard::obs {

namespace detail {

std::atomic<int> g_trace{-1};

int resolve_trace() {
  const char* env = std::getenv("SIGNGUARD_TRACE");
  const int v = (env != nullptr && env[0] != '\0' &&
                 std::strcmp(env, "0") != 0)
                    ? 1
                    : 0;
  // Another thread may race the first resolution; both compute the same
  // value from the same environment.
  g_trace.store(v, std::memory_order_relaxed);
  return v;
}

}  // namespace detail

void set_trace_enabled(bool on) {
  detail::g_trace.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace {

// Per-lane event capacity. A smoke sweep emits a few hundred spans per
// scenario; overflow drops the newest events and counts them, so a
// runaway loop degrades the trace instead of memory.
constexpr std::size_t kLaneCapacity = 1 << 16;

struct Lane {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

struct Collector {
  std::mutex mu;
  std::vector<Lane*> lanes;  // leak-forever: lanes outlive their threads
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Collector& collector() {
  static Collector* c = new Collector;  // immortal: spans may outlive main
  return *c;
}

Lane& this_lane() {
  thread_local Lane* lane = [] {
    auto* l = new Lane;
    l->events.reserve(1024);
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    c.lanes.push_back(l);
    return l;
  }();
  return *lane;
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char ch = *s;
    if (ch == '"' || ch == '\\') {
      (out += '\\') += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", ch);
      out += buf;
    } else {
      out += ch;
    }
  }
}

}  // namespace

namespace detail {

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - collector().epoch)
          .count());
}

void trace_record(const char* name, std::uint64_t start_ns,
                  std::int64_t arg) {
  Lane& lane = this_lane();
  if (lane.events.size() >= kLaneCapacity) {
    ++lane.dropped;
    return;
  }
  TraceEvent e;
  e.name = name;
  e.start_ns = start_ns;
  e.dur_ns = trace_now_ns() - start_ns;
  e.arg = arg;
  lane.events.push_back(e);
}

}  // namespace detail

const char* intern_name(const std::string& s) {
  static std::mutex mu;
  static std::set<std::string>* pool = new std::set<std::string>;
  std::lock_guard<std::mutex> lock(mu);
  return pool->insert(s).first->c_str();  // node-based: pointer is stable
}

void trace_reset() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  for (Lane* lane : c.lanes) {
    lane->events.clear();
    lane->dropped = 0;
  }
  c.epoch = std::chrono::steady_clock::now();
}

std::uint64_t trace_dropped() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  std::uint64_t n = 0;
  for (const Lane* lane : c.lanes) n += lane->dropped;
  return n;
}

std::vector<std::vector<TraceEvent>> trace_snapshot() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  std::vector<std::vector<TraceEvent>> out;
  out.reserve(c.lanes.size());
  for (const Lane* lane : c.lanes) {
    std::vector<TraceEvent> events = lane->events;
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                // Ties (a parent span can share its child's start tick):
                // longer span first, so nesting order is parent-first.
                return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                : a.dur_ns > b.dur_ns;
              });
    out.push_back(std::move(events));
  }
  return out;
}

std::string chrome_trace_json() {
  const auto lanes = trace_snapshot();
  std::string out = "{\"traceEvents\":[";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                "\"args\":{\"name\":\"signguard\"}}");
  out += buf;
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    std::snprintf(buf, sizeof buf,
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%zu,\"args\":{\"name\":\"lane-%zu\"}}",
                  l, l);
    out += buf;
  }
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    for (const TraceEvent& e : lanes[l]) {
      out += ",{\"name\":\"";
      json_escape_into(out, e.name);
      // ts/dur are microseconds (the trace_event unit), printed with ns
      // resolution.
      std::snprintf(buf, sizeof buf,
                    "\",\"cat\":\"signguard\",\"ph\":\"X\",\"pid\":1,"
                    "\"tid\":%zu,\"ts\":%.3f,\"dur\":%.3f",
                    l, double(e.start_ns) / 1000.0, double(e.dur_ns) / 1000.0);
      out += buf;
      if (e.arg >= 0) {
        std::snprintf(buf, sizeof buf, ",\"args\":{\"v\":%lld}",
                      static_cast<long long>(e.arg));
        out += buf;
      }
      out += '}';
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void write_prometheus(std::ostream& os, const MetricsRegistry* reg) {
  const auto lanes = trace_snapshot();
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> by_name;
  for (const auto& lane : lanes)
    for (const TraceEvent& e : lane) {
      auto& agg = by_name[e.name];
      ++agg.first;
      agg.second += e.dur_ns;
    }
  os << "# TYPE signguard_span_seconds_total counter\n";
  for (const auto& [name, agg] : by_name)
    os << "signguard_span_seconds_total{name=\"" << name << "\"} "
       << double(agg.second) * 1e-9 << "\n";
  os << "# TYPE signguard_span_count counter\n";
  for (const auto& [name, agg] : by_name)
    os << "signguard_span_count{name=\"" << name << "\"} " << agg.first
       << "\n";
  os << "signguard_trace_dropped_total " << trace_dropped() << "\n";
  if (reg != nullptr) reg->write_prometheus(os);
}

const char* stage_span_name(Stage s) {
  switch (s) {
    case Stage::kClientCompute: return "stage/client_compute";
    case Stage::kEncode: return "stage/encode";
    case Stage::kUplink: return "stage/uplink";
    case Stage::kDecode: return "stage/decode";
    case Stage::kFilter: return "stage/filter";
    case Stage::kAggregate: return "stage/aggregate";
    case Stage::kMerge: return "stage/merge";
    case Stage::kEval: return "stage/eval";
    case Stage::kCheckpoint: return "stage/checkpoint";
    case Stage::kOther: return "stage/other";
  }
  return "stage/?";
}

StageScope::StageScope(Stage s, const char* span_name, std::int64_t arg)
    : stage_(s),
      saved_(detail::t_ctx.stage),
      span_(span_name != nullptr ? span_name : stage_span_name(s), arg) {
  detail::t_ctx.stage = s;
  MetricsRegistry* reg = detail::t_ctx.reg;
  if (reg != nullptr && reg->timing_enabled()) {
    timed_reg_ = reg;
    t0_ns_ = detail::trace_now_ns();
  }
}

StageScope::~StageScope() {
  if (timed_reg_ != nullptr)
    timed_reg_->add_ms(stage_,
                       double(detail::trace_now_ns() - t0_ns_) * 1e-6);
  detail::t_ctx.stage = saved_;
}

}  // namespace signguard::obs
