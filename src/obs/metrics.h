#pragma once
// Deterministic work counters — plane 1 of the observability subsystem.
//
// A MetricsRegistry accumulates named u64 counters per (round, stage).
// Counted quantities are deterministic functions of the configuration
// (rows decoded, dense-equivalent bytes touched, filter admissions,
// GEMM flops, checkpoint bytes, retry attempts, shard survivors), and
// u64 addition is commutative and associative, so the per-round records
// are bitwise identical for any SIGNGUARD_THREADS value and any
// submission order — the counters are golden-testable, unlike the
// timing plane (obs/trace.h), which is kept strictly separate.
//
// Concurrency model: add() lands in one of a fixed set of cache-padded
// atomic shards (indexed by a per-thread slot); end_round() merges the
// shards into the round's record in canonical shard order on the
// coordinator thread. Timing (stage_ms) is written only by the
// coordinator via StageScope / add_ms and only when the registry was
// built with timing enabled.
//
// Attachment model: library code never takes a registry parameter — it
// calls the free obs::count() helpers, which resolve a thread-local
// ObsContext {registry, current stage}. The context is installed for a
// training run by ScopedMetrics, propagated to pool helper threads via
// common::task_context (common/parallel.h), and is null everywhere
// else, making every count() a cheap no-op when observability is off.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/serial.h"

namespace signguard::obs {

// Pipeline stage a cost is attributed to. The taxonomy mirrors the
// trainer's round structure (docs/ARCHITECTURE.md "Observability").
enum class Stage : std::uint8_t {
  kClientCompute = 0,  // local training fan-out
  kEncode,             // codec encode of uplink rows
  kUplink,             // transmission: chaos sift, retries, sent bytes
  kDecode,             // wire validate/decode back into the round matrix
  kFilter,             // robust-rule admission decisions
  kAggregate,          // GAR aggregation (incl. the wire-stats pass)
  kMerge,              // sharded-tree root merge
  kEval,               // periodic test-set evaluation
  kCheckpoint,         // crash-consistent state save
  kOther,              // unattributed (attack craft, setup)
};
inline constexpr std::size_t kNumStages = 10;
const char* to_string(Stage s);

enum class Counter : std::uint8_t {
  kRowsEncoded = 0,    // gradient rows pushed through the codec
  kRowsDecoded,        // rows materialized back to f32
  kWireBytes,          // encoded bytes actually transmitted (retries incl.)
  kDenseBytes,         // dense-equivalent f32 bytes touched
  kDecodeRejects,      // uplinks the wire layer refused
  kFilterAdmits,       // rows admitted by a selecting rule
  kFilterRejects,      // rows rejected by a selecting rule
  kGemmFlops,          // 2*m*n*k per GEMM call (nn/gemm.cc)
  kCheckpointBytes,    // serialized trainer payload bytes
  kRetryAttempts,      // uplink transmissions including retries
  kShardSurvivors,     // per-shard post-filter survivor total
};
inline constexpr std::size_t kNumCounters = 11;
const char* to_string(Counter c);

// One round's cost record. counters[][] is the deterministic plane;
// stage_ms is the coordinator-measured timing plane (all zero unless the
// registry was built with timing enabled — and then nondeterministic).
struct RoundCost {
  std::uint64_t round = 0;
  std::uint64_t counters[kNumStages][kNumCounters] = {};
  double stage_ms[kNumStages] = {};
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool timing = false);
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool timing_enabled() const { return timing_; }

  // Round lifecycle, coordinator thread only. begin_round() implicitly
  // closes a still-open round; end_round() drains the shards (canonical
  // order) into the record and appends it to rounds().
  void begin_round(std::uint64_t round);
  void end_round();

  // Thread-safe from any thread between begin_round and end_round.
  void add(Stage s, Counter c, std::uint64_t v);
  // Coordinator only; no-op unless timing_enabled().
  void add_ms(Stage s, double ms);

  const std::vector<RoundCost>& rounds() const { return rounds_; }
  RoundCost totals() const;  // sum over rounds()
  // Number of add() invocations so far (for overhead estimation).
  std::uint64_t ops() const;

  // Checkpoint round-trip (rides the sweep checkpoint's extra blob so a
  // resumed scenario reports bitwise-identical counters). serialize() is
  // callable mid-round: it snapshots the open round — shards summed
  // non-destructively — as a closed record, which is exactly what
  // end_round() will produce, since a save happens at a round boundary
  // with no adds in between.
  void serialize(common::ByteWriter& w) const;
  void restore(common::ByteReader& r);

  // Prometheus text exposition of the counter totals.
  void write_prometheus(std::ostream& os) const;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> c[kNumStages][kNumCounters];
    std::atomic<std::uint64_t> ops;
  };
  static constexpr std::size_t kShards = 16;

  RoundCost snapshot_current() const;

  bool timing_;
  bool in_round_ = false;
  RoundCost cur_;
  std::vector<Shard> shards_;
  std::vector<RoundCost> rounds_;
};

// The thread-local attachment point resolved by obs::count().
struct ObsContext {
  MetricsRegistry* reg = nullptr;
  Stage stage = Stage::kOther;
};

namespace detail {
extern thread_local ObsContext t_ctx;
// Helper-thread fallback: the context the launching thread published via
// common::task_context, or a null context.
const ObsContext& inherited_context();
}  // namespace detail

// Effective context for the calling thread: its own installed context,
// else the one inherited from the thread that launched the current
// parallel_chunks job, else null.
inline const ObsContext& context() {
  return detail::t_ctx.reg != nullptr ? detail::t_ctx
                                      : detail::inherited_context();
}

// Attribute `v` to counter `c` under the context's current stage (or an
// explicit stage). No-ops (one TLS load + branch) with no registry
// attached.
inline void count(Counter c, std::uint64_t v) {
  const ObsContext& ctx = context();
  if (ctx.reg != nullptr) ctx.reg->add(ctx.stage, c, v);
}
inline void count(Stage s, Counter c, std::uint64_t v) {
  const ObsContext& ctx = context();
  if (ctx.reg != nullptr) ctx.reg->add(s, c, v);
}

// Installs `reg` as the calling thread's context for its lifetime and
// publishes it through common::task_context so pool helpers inherit it.
// Restores both on destruction (the trainer holds one for run()).
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* reg);
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  ObsContext saved_;
  void* saved_task_;
};

}  // namespace signguard::obs
