// Example: a "kitchen-sink" cross-silo simulation combining every system
// dimension the library models at once —
//   * non-IID data (sort-and-partition, s = 0.5),
//   * partial participation (60% of clients sampled per round),
//   * failure injection (5% client dropout, 5% straggler skip per round),
//   * client-side history (momentum buffers on the clients),
//   * a time-varying adversary re-rolling its attack every epoch,
//   * SignGuard-Sim defense.
//
//   ./cross_silo_simulation
//
// This is the closest configuration to a production federated deployment
// the paper's threat model describes; the run prints the accuracy curve
// and the defense's cumulative selection quality.

#include <cstdio>

#include "attacks/time_varying.h"
#include "fl/experiment.h"
#include "fl/trainer.h"

int main() {
  using namespace signguard;

  const auto scale = fl::scale_from_env();
  fl::Workload w = fl::make_workload(fl::WorkloadKind::kFashionLike,
                                     fl::ModelProfile::kGrid, scale);
  w.config.noniid = true;
  w.config.noniid_s = 0.5;
  w.config.participation = 0.6;
  w.config.dropout_prob = 0.05;    // failure injection: lost clients...
  w.config.straggler_prob = 0.05;  // ...and updates that arrive too late
  w.config.momentum = 0.0;         // history lives on the clients instead
  w.config.client_momentum = 0.9;
  w.config.lr = 0.02;              // buffered gradients are ~10x larger
  w.config.eval_every = std::max<std::size_t>(5, w.config.rounds / 12);

  std::printf(
      "cross-silo simulation: %s, non-IID s=%.1f, %.0f%% participation, "
      "%.0f%% dropout, %.0f%% stragglers, client momentum %.1f, "
      "%.0f%% Byzantine, time-varying attack\n\n",
      w.name.c_str(), w.config.noniid_s, 100.0 * w.config.participation,
      100.0 * w.config.dropout_prob, 100.0 * w.config.straggler_prob,
      w.config.client_momentum, 100.0 * w.config.byzantine_frac);

  fl::Trainer trainer(w.data, w.model_factory, w.config);
  attacks::TimeVaryingAttack attack(
      std::max<std::size_t>(1, w.config.rounds / 12), /*seed=*/2026);

  std::size_t dropped = 0, stragglers = 0, skipped = 0;
  const auto res = trainer.run(
      attack, fl::make_aggregator("SignGuard-Sim"),
      [&](const fl::RoundObservation& obs) {
        dropped += obs.dropped;
        stragglers += obs.stragglers;
        skipped += obs.skipped ? 1 : 0;
        if (obs.test_accuracy)
          std::printf("  round %3zu  accuracy %5.2f%%\n", obs.round + 1,
                      *obs.test_accuracy);
      });

  std::printf("\nbest accuracy: %.2f%%\n", res.best_accuracy);
  std::printf("selection quality: honest kept %.3f, malicious kept %.3f "
              "(over %zu rounds)\n",
              res.selection.honest_rate, res.selection.malicious_rate,
              res.selection.rounds);
  std::printf("failures injected: %zu dropouts, %zu stragglers, "
              "%zu rounds without an honest update\n",
              dropped, stragglers, skipped);
  return 0;
}
