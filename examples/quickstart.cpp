// Quickstart: defend a federated learning job against the paper's hybrid
// ByzMean attack with SignGuard.
//
//   ./quickstart
//
// Builds a 50-client federation on the synthetic MNIST-like task with 20%
// Byzantine clients running ByzMean (the strongest attack in the paper:
// it steers the gradient mean to an arbitrary vector, Eq. 8), then trains
// twice: once aggregating with plain Mean (undefended) and once with
// SignGuard. Prints both accuracy trajectories and the recovery.

#include <cstdio>

#include "attacks/byzmean.h"
#include "attacks/simple_attacks.h"
#include "core/signguard.h"
#include "fl/experiment.h"
#include "fl/trainer.h"

int main() {
  using namespace signguard;

  // 1. A workload: synthetic dataset + model factory + tuned FL config.
  fl::Workload workload = fl::make_workload(
      fl::WorkloadKind::kMnistLike, fl::ModelProfile::kGrid,
      fl::scale_from_env());
  std::printf("workload: %s | clients=%zu byzantine=%.0f%% rounds=%zu\n",
              workload.name.c_str(), workload.config.n_clients,
              100.0 * workload.config.byzantine_frac,
              workload.config.rounds);
  std::printf("%s\n", fl::runtime_summary(fl::scale_from_env()).c_str());

  // 2. The attack: ByzMean steering the mean toward random noise (§III).
  auto make_attack = [] {
    return attacks::ByzMeanAttack(
        std::make_unique<attacks::RandomAttack>(0.0, 0.5));
  };

  // 3. Train undefended (plain Mean) and defended (SignGuard).
  fl::Trainer trainer(workload.data, workload.model_factory,
                      workload.config);

  std::printf("\n-- Mean aggregation under ByzMean --\n");
  auto byzmean = make_attack();
  const fl::TrainingResult undefended =
      trainer.run(byzmean, fl::make_aggregator("Mean"));
  for (const auto& r : undefended.history)
    std::printf("  round %3zu  accuracy %5.2f%%\n", r.round + 1,
                r.test_accuracy);

  std::printf("\n-- SignGuard under ByzMean --\n");
  auto byzmean2 = make_attack();
  const fl::TrainingResult defended =
      trainer.run(byzmean2, fl::make_aggregator("SignGuard"));
  for (const auto& r : defended.history)
    std::printf("  round %3zu  accuracy %5.2f%%\n", r.round + 1,
                r.test_accuracy);

  std::printf("\nbest accuracy: mean=%.2f%%  signguard=%.2f%%\n",
              undefended.best_accuracy, defended.best_accuracy);
  std::printf("signguard recovered %.2f accuracy points\n",
              defended.best_accuracy - undefended.best_accuracy);
  std::printf("malicious gradients admitted: %.1f%% of rounds\n",
              100.0 * defended.selection.malicious_rate);
  return 0;
}
