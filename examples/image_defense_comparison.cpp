// Example: compare every defense in the library on one image-classification
// federation under a chosen attack.
//
//   ./image_defense_comparison [attack]     (default: ByzMean)
//
// Demonstrates the factory API (make_workload / make_attack /
// make_aggregator) and the TrainingResult metrics, including SignGuard's
// honest/malicious selection accounting.

#include <cstdio>
#include <string>

#include "common/table.h"
#include "fl/experiment.h"
#include "fl/trainer.h"

int main(int argc, char** argv) {
  using namespace signguard;
  const std::string attack_name = argc > 1 ? argv[1] : "ByzMean";

  fl::Workload w = fl::make_workload(fl::WorkloadKind::kFashionLike,
                                     fl::ModelProfile::kGrid,
                                     fl::scale_from_env());
  std::printf("workload %s | attack %s | %zu clients, %.0f%% Byzantine\n\n",
              w.name.c_str(), attack_name.c_str(), w.config.n_clients,
              100.0 * w.config.byzantine_frac);

  fl::Trainer trainer(w.data, w.model_factory, w.config);

  TextTable table({"defense", "best acc (%)", "final acc (%)",
                   "honest kept", "malicious kept"});
  for (const auto& defense : fl::table1_defenses()) {
    auto attack = fl::make_attack(attack_name);
    const auto res = trainer.run(*attack, fl::make_aggregator(defense));
    const bool has_selection = res.selection.rounds > 0;
    table.add_row(
        {defense, TextTable::fmt(res.best_accuracy),
         TextTable::fmt(res.final_accuracy),
         has_selection ? TextTable::fmt(res.selection.honest_rate, 3) : "-",
         has_selection ? TextTable::fmt(res.selection.malicious_rate, 3)
                       : "-"});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
