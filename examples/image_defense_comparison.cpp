// Example: compare every defense in the library on one image-classification
// federation under a chosen attack — a one-dimensional sweep, executed
// concurrently by fl::run_sweep.
//
//   ./image_defense_comparison [attack]     (default: ByzMean)
//
// Demonstrates the sweep API (SweepGrid / run_sweep / ScenarioResult) and
// the per-scenario metrics, including SignGuard's honest/malicious
// filter pass-rates.

#include <cstdio>
#include <string>

#include "common/table.h"
#include "fl/sweep.h"

int main(int argc, char** argv) {
  using namespace signguard;
  const std::string attack_name = argc > 1 ? argv[1] : "ByzMean";

  fl::SweepGrid grid;
  grid.workloads = {fl::WorkloadKind::kFashionLike};
  grid.attacks = {attack_name};
  grid.gars = fl::table1_defenses();
  std::printf("workload %s | attack %s | %zu defenses, one sweep\n\n",
              fl::workload_name(grid.workloads.front()).c_str(),
              attack_name.c_str(), grid.gars.size());

  fl::SweepOptions opts;
  opts.scale = fl::scale_from_env();
  opts.capture_rounds = false;
  const auto results = fl::run_sweep(grid.expand(), opts);

  std::size_t failed = 0;
  TextTable table({"defense", "best acc (%)", "final acc (%)",
                   "honest kept", "malicious kept"});
  for (const auto& defense : fl::table1_defenses()) {
    for (const auto& r : results) {
      if (r.spec.gar != defense) continue;
      if (!r.error.empty()) {
        // e.g. a mistyped attack name: surface it instead of tabulating
        // a plausible-looking row of zeros.
        std::fprintf(stderr, "%s: %s\n", defense.c_str(), r.error.c_str());
        ++failed;
        continue;
      }
      const bool has_selection = r.honest_pass_rate >= 0.0;
      table.add_row(
          {defense, TextTable::fmt(r.best_accuracy),
           TextTable::fmt(r.final_accuracy),
           has_selection ? TextTable::fmt(r.honest_pass_rate, 3) : "-",
           has_selection ? TextTable::fmt(r.malicious_pass_rate, 3) : "-"});
    }
  }
  std::printf("%s", table.to_string().c_str());
  return failed > 0 ? 1 : 0;
}
