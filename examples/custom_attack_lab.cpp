// Example: extending the library with a CUSTOM attack and a CUSTOM
// aggregation rule, then pitting them against the built-ins.
//
//   ./custom_attack_lab
//
// The attack ("AdaptiveScale") tries to stay inside SignGuard's norm band
// while flipping direction — the adaptive-adversary setting the paper
// flags as future work. The defense ("MedianOfMeans") groups clients into
// buckets and takes the coordinate median of bucket means. Both plug into
// the same interfaces the built-ins use: attacks::Attack and
// agg::Aggregator.

#include <algorithm>
#include <cstdio>

#include "aggregators/aggregator.h"
#include "aggregators/baselines.h"
#include "common/quantiles.h"
#include "common/vecops.h"
#include "core/signguard.h"
#include "fl/experiment.h"
#include "fl/trainer.h"

namespace {

using namespace signguard;

// Sends -r * mean(benign) with r chosen to exactly match the median
// benign norm, so the norm filter cannot reject it.
class AdaptiveScaleAttack final : public attacks::Attack {
 public:
  std::vector<std::vector<float>> craft(
      const attacks::AttackContext& ctx) override {
    std::vector<double> norms;
    norms.reserve(ctx.benign_grads.size());
    for (const auto& g : ctx.benign_grads) norms.push_back(vec::norm(g));
    const double target = stats::median(norms);
    auto gm = vec::mean_of(ctx.benign_grads);
    const double n = vec::norm(gm);
    vec::scale(gm, n > 0.0 ? -target / n : -1.0);
    return std::vector<std::vector<float>>(ctx.n_byzantine, gm);
  }
  std::string name() const override { return "AdaptiveScale"; }
};

// Median-of-means: shuffle-free bucketing of clients, coordinate median
// across bucket means. A classic robust estimator, here as a user-defined
// GAR implementing the flat GradientMatrix entry point.
class MedianOfMeansAggregator final : public agg::Aggregator {
 public:
  explicit MedianOfMeansAggregator(std::size_t buckets) : buckets_(buckets) {}

  using agg::Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const agg::GarContext&) override {
    const std::size_t n = grads.rows();
    const std::size_t b = std::min(buckets_, n);
    const std::size_t d = grads.cols();
    common::GradientMatrix bucket_means(b, d);
    for (std::size_t k = 0; k < b; ++k) {
      const auto acc = bucket_means.row(k);
      std::size_t count = 0;
      for (std::size_t i = k; i < n; i += b) {
        vec::axpy(1.0, grads.row(i), acc);
        ++count;
      }
      vec::scale(acc, 1.0 / double(count));
    }
    std::vector<float> out(d);
    std::vector<double> column(b);
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t k = 0; k < b; ++k) column[k] = bucket_means.at(k, j);
      out[j] = static_cast<float>(stats::median(column));
    }
    return out;
  }
  std::string name() const override { return "MedianOfMeans"; }

 private:
  std::size_t buckets_;
};

}  // namespace

int main() {
  fl::Workload w = fl::make_workload(fl::WorkloadKind::kMnistLike,
                                     fl::ModelProfile::kGrid,
                                     fl::scale_from_env());
  std::printf("custom attack (AdaptiveScale) vs three defenses\n\n");

  fl::Trainer trainer(w.data, w.model_factory, w.config);

  {
    AdaptiveScaleAttack attack;
    const auto res = trainer.run(attack, std::make_unique<agg::MeanAggregator>());
    std::printf("  Mean            : best %5.2f%%\n", res.best_accuracy);
  }
  {
    AdaptiveScaleAttack attack;
    const auto res =
        trainer.run(attack, std::make_unique<MedianOfMeansAggregator>(10));
    std::printf("  MedianOfMeans   : best %5.2f%%\n", res.best_accuracy);
  }
  {
    AdaptiveScaleAttack attack;
    const auto res = trainer.run(
        attack, std::make_unique<core::SignGuard>(core::plain_config()));
    std::printf("  SignGuard       : best %5.2f%%  (honest kept %.2f, "
                "malicious kept %.2f)\n",
                res.best_accuracy, res.selection.honest_rate,
                res.selection.malicious_rate);
  }
  std::printf(
      "\nAdaptiveScale defeats the norm filter by construction; SignGuard "
      "still rejects it through the sign-statistics cluster.\n");
  return 0;
}
