// Example: Byzantine-robust federated *text* classification with the
// recurrent TextRNN model (the paper's AG-News workload) under the
// Min-Max attack.
//
//   ./text_classification_robust
//
// Shows the paper-profile models (embedding + tanh RNN with BPTT) running
// in the same federation API, and contrasts an undefended run with
// SignGuard-Sim.

#include <cstdio>

#include "attacks/minmax_minsum.h"
#include "core/signguard.h"
#include "fl/experiment.h"
#include "fl/trainer.h"

int main() {
  using namespace signguard;

  const auto scale = fl::scale_from_env();
  fl::Workload w = fl::make_workload(fl::WorkloadKind::kAgNewsLike,
                                     fl::ModelProfile::kPaper, scale);
  // RNN-tuned hyperparameters (calibrated): gentler learning rate and a
  // larger batch stabilize BPTT under server momentum.
  w.config.lr = 0.05;
  w.config.batch_size = 16;
  w.config.rounds = scale == fl::Scale::kSmoke
                        ? 40
                        : (scale == fl::Scale::kFull ? 240 : 120);
  w.config.eval_every = w.config.rounds / 6;
  w.config.eval_max_samples = 400;

  std::printf(
      "federated text classification: TextRNN (embedding+RNN+linear), "
      "%zu clients, %.0f%% Byzantine, Min-Max attack\n\n",
      w.config.n_clients, 100.0 * w.config.byzantine_frac);

  fl::Trainer trainer(w.data, w.model_factory, w.config);

  {
    attacks::MinMaxAttack minmax;
    const auto res =
        trainer.run(minmax, fl::make_aggregator("Mean"),
                    [](const fl::RoundObservation& obs) {
                      if (obs.test_accuracy)
                        std::printf("  [mean      ] round %3zu  acc %5.2f%%\n",
                                    obs.round + 1, *obs.test_accuracy);
                    });
    std::printf("undefended best accuracy: %.2f%%\n\n", res.best_accuracy);
  }
  {
    attacks::MinMaxAttack minmax;
    const auto res =
        trainer.run(minmax, fl::make_aggregator("SignGuard-Sim"),
                    [](const fl::RoundObservation& obs) {
                      if (obs.test_accuracy)
                        std::printf("  [signguard ] round %3zu  acc %5.2f%%\n",
                                    obs.round + 1, *obs.test_accuracy);
                    });
    std::printf("SignGuard-Sim best accuracy: %.2f%%\n", res.best_accuracy);
    std::printf("selection rates: honest %.3f, malicious %.3f\n",
                res.selection.honest_rate, res.selection.malicious_rate);
  }
  return 0;
}
